(** Structured telemetry: counters, histograms and timing spans for the
    whole pipeline, designed for OCaml 5 domains.

    {2 Model}

    Metric {e handles} ({!counter}, {!histogram}) intern a name into a
    process-global slot table once, at module initialization.  Every
    write then goes to a {e domain-local} registry (one per domain,
    allocated lazily through [Domain.DLS]), so the hot path takes no
    locks and shares no cache lines across domains.  {!snapshot} merges
    all registries.

    {2 Determinism contract}

    Counter and histogram merging is a per-slot integer sum — a
    commutative, associative fold — so the aggregated {e value-metrics}
    of a run are independent of how work was spread over domains:
    [-j1] and [-j4] executions of the same fault-free workload produce
    identical counter and histogram sections (and {!to_json} renders
    them canonically, so the sections are byte-identical).  Wall-time
    spans are inherently nondeterministic and are reported in a separate
    section that comparisons strip.  Under chaos mode ([--faults]) a
    quarantined Prepare item may be rebuilt by several racing consumers,
    so build counters can differ across job counts — the contract is
    stated for fault-free runs.

    {2 Overhead}

    Instrumentation is deliberately coarse: hot loops (arena replay,
    packed scoring) carry no telemetry at all; counters are flushed once
    per run / per search call.  A disabled registry ({!set_enabled}
    [false]) short-circuits every operation on one atomic load. *)

(** {1 Recording} *)

type counter
type histogram

val counter : string -> counter
(** Intern (or look up) a counter slot.  Call at module initialization
    and keep the handle; interning takes the global lock. *)

val histogram : string -> histogram
(** Same, for a log-bucketed histogram of non-negative integers. *)

val incr : counter -> unit
val add : counter -> int -> unit
val observe : histogram -> int -> unit

val span : string -> (unit -> 'a) -> 'a
(** [span name f] times [f ()] and records a completed span on the
    current domain (exceptions still record the span).  Spans nest;
    the recorded depth is the number of enclosing spans on the same
    domain. *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Globally enable/disable recording (snapshotting still works). *)

val reset : unit -> unit
(** Zero every registry and restart the span epoch.  Only meaningful
    while no other domain is recording (tests, bench section breaks). *)

(** {1 Pure histogram cells (exposed for property tests)} *)

module Hist : sig
  type t = {
    count : int;
    sum : int;
    min_v : int;  (** [max_int] when empty *)
    max_v : int;  (** [min_int] when empty *)
    buckets : int array;  (** length {!n_buckets} *)
  }

  val n_buckets : int

  val bucket_of_value : int -> int
  (** Bucket 0 holds values [<= 0]; bucket [b >= 1] holds
      [2{^b-1} <= v < 2{^b}] (the last bucket also takes the overflow
      tail). *)

  val bucket_bounds : int -> int * int
  (** Inclusive [(lo, hi)] value range of a bucket. *)

  val empty : t
  val observe : t -> int -> t
  val merge : t -> t -> t
  val equal : t -> t -> bool
end

(** {1 Aggregation} *)

type span_record = {
  sp_name : string;
  sp_domain : int;  (** id of the recording domain *)
  sp_depth : int;  (** enclosing spans on that domain at entry *)
  sp_start_s : float;  (** seconds since the epoch ({!reset} time) *)
  sp_dur_s : float;
}

type snapshot

val snapshot : unit -> snapshot
(** Deterministic merge of every domain's registry: counters and
    histograms sum per slot and list in name order; spans concatenate
    and sort by (start, domain, name). *)

val counters : snapshot -> (string * int) list
val histograms : snapshot -> (string * Hist.t) list
val spans : snapshot -> span_record list
val counter_value : snapshot -> string -> int
(** 0 when the name was never registered. *)

(** {1 Export} *)

val schema_version : int

val to_json : snapshot -> Sjson.t
(** The versioned [metrics.json] document (schema in EXPERIMENTS.md):
    members [schema], [version], [counters], [histograms], [spans].
    Everything outside the [spans] member is deterministic (see the
    contract above). *)

val to_json_string : snapshot -> string

val strip_wall_time : Sjson.t -> Sjson.t
(** Drop the (wall-clock) [spans] member — what the [-j1] vs [-j4]
    equality check compares. *)

val to_text : snapshot -> string
(** Human-readable multi-line summary (counters, histograms, span
    aggregates). *)

val summary_lines : snapshot -> string list
(** The end-of-run summary block: one ["name = value"] line per nonzero
    counter, sorted.  The single place run/fault/cache accounting is
    reported from. *)

val to_chrome : snapshot -> string
(** Chrome [trace_events] JSON (load into [about://tracing] or
    [ui.perfetto.dev]): one complete ("ph":"X") event per span, one
    track per domain. *)

val write_file : path:string -> string -> unit
(** Write atomically enough for CI consumption (tmp + rename). *)
