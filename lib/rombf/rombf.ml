open Whisper_trace

type hint = Tree of Whisper_formula.Tree.t | Always | Never

type t = {
  n : int;
  hints : (int, hint) Hashtbl.t;
  training_seconds : float;
}

(* Raw-history taken/not-taken tables from a sample half. *)
let tables_at profile ~pc ~n ~part =
  let size = 1 lsl n in
  let taken = Array.make size 0 in
  let not_taken = Array.make size 0 in
  let mask = size - 1 in
  let i = ref 0 in
  Profile.iter_samples profile ~pc ~f:(fun ~raw8 ~raw56:_ ~hash:_ ~taken:tk ~correct:_ ->
      let keep = if part = `Train then !i land 1 = 0 else !i land 1 = 1 in
      incr i;
      if keep then begin
        let k = raw8 land mask in
        if tk then taken.(k) <- taken.(k) + 1
        else not_taken.(k) <- not_taken.(k) + 1
      end);
  (taken, not_taken)

let mispredicts_of ~taken ~not_taken truth =
  let m = ref 0 in
  Array.iteri
    (fun k t ->
      if Whisper_formula.Tree.eval_tt truth k then m := !m + not_taken.(k)
      else m := !m + t)
    taken;
  !m

let part_baseline profile ~pc ~part =
  let mispred = ref 0 and taken = ref 0 and n = ref 0 in
  let i = ref 0 in
  Profile.iter_samples profile ~pc ~f:(fun ~raw8:_ ~raw56:_ ~hash:_ ~taken:tk ~correct ->
      let keep = if part = `Train then !i land 1 = 0 else !i land 1 = 1 in
      incr i;
      if keep then begin
        incr n;
        if not correct then incr mispred;
        if tk then incr taken
      end);
  (!mispred, !taken, !n)

let train ?(n = 8) ?(min_gain = 2) profile =
  if n <> 4 && n <> 8 then invalid_arg "Rombf.train: n must be 4 or 8";
  let t0 = Unix.gettimeofday () in
  let space = Whisper_formula.Tree.classic_space_size ~leaves:n in
  let formulas =
    Array.init space (fun id ->
        let tree = Whisper_formula.Tree.of_classic_id ~leaves:n id in
        (tree, Whisper_formula.Tree.truth_table tree))
  in
  let hints = Hashtbl.create 1024 in
  Array.iter
    (fun pc ->
      if Profile.n_samples profile ~pc >= 8 then begin
        let taken, not_taken = tables_at profile ~pc ~n ~part:`Train in
        let _, train_taken, train_n = part_baseline profile ~pc ~part:`Train in
        let train_nt = train_n - train_taken in
        (* exhaustive search of the classic space + the two bias hints *)
        let best = ref ((if train_taken >= train_nt then Always else Never),
                        min train_taken train_nt) in
        Array.iter
          (fun (tree, truth) ->
            let m = mispredicts_of ~taken ~not_taken truth in
            if m < snd !best then best := (Tree tree, m))
          formulas;
        (* held-out acceptance against the profiled baseline accuracy *)
        let eval_baseline, eval_taken, eval_n = part_baseline profile ~pc ~part:`Eval in
        let e_taken, e_not_taken = tables_at profile ~pc ~n ~part:`Eval in
        let eval_m =
          match fst !best with
          | Always -> eval_n - eval_taken
          | Never -> eval_taken
          | Tree tree ->
              mispredicts_of ~taken:e_taken ~not_taken:e_not_taken
                (Whisper_formula.Tree.truth_table tree)
        in
        let required = max min_gain ((eval_baseline + 9) / 10) in
        if eval_baseline - eval_m >= required then
          Hashtbl.replace hints pc (fst !best)
      end)
    (Profile.candidates profile);
  { n; hints; training_seconds = Unix.gettimeofday () -. t0 }

let hint_count t = Hashtbl.length t.hints

module Runtime = struct
  type rt = {
    spec : t;
    base : Whisper_bpu.Predictor.t;
    truths : (int, Bytes.t) Hashtbl.t;
    mutable ghist : int;  (* raw last-N outcomes, newest in bit 0 *)
    mutable n_hinted : int;
  }

  let create spec ~baseline =
    { spec; base = baseline; truths = Hashtbl.create 256; ghist = 0; n_hinted = 0 }

  let truth rt tree =
    let id = Whisper_formula.Tree.to_id tree in
    match Hashtbl.find_opt rt.truths id with
    | Some b -> b
    | None ->
        let b = Whisper_formula.Tree.truth_table tree in
        Hashtbl.add rt.truths id b;
        b

  let exec_at rt ~pc ~taken =
    let hinted =
      match Hashtbl.find_opt rt.spec.hints pc with
      | Some Always -> Some true
      | Some Never -> Some false
      | Some (Tree tree) ->
          let bits = rt.ghist land ((1 lsl rt.spec.n) - 1) in
          Some (Whisper_formula.Tree.eval_tt (truth rt tree) bits)
      | None -> None
    in
    let correct =
      match hinted with
      | Some pred ->
          rt.n_hinted <- rt.n_hinted + 1;
          rt.base.spectate ~pc ~taken;
          pred = taken
      | None ->
          let pred = rt.base.predict ~pc in
          rt.base.train ~pc ~taken;
          rt.base.is_oracle || pred = taken
    in
    rt.ghist <- (rt.ghist lsl 1) lor (if taken then 1 else 0);
    correct

  let exec rt (e : Branch.event) = exec_at rt ~pc:e.pc ~taken:e.taken

  let hinted_predictions rt = rt.n_hinted
end
