(** Unified execution of every prediction technique in the study over the
    timing model, with in-process memoization of profiles, trained
    artifacts and run results, so that figures sharing configurations
    (e.g. Figs. 12 and 13) pay for each simulation once.

    Two layers sit on top of the memo tables:

    - an optional persistent {!Result_cache} (enabled with
      [create_ctx ~cache_dir]), which survives CLI invocations so warm
      reruns perform zero simulations;
    - a declarative batch API ({!sim} / {!collect} / {!run_batch}) that
      fans independent work items out across a {!Whisper_util.Pool} of
      domains.  Every stochastic component draws from a deterministic
      per-task RNG seeded by the work item's own parameters, so parallel
      and sequential runs produce identical tables. *)

type technique =
  | Baseline  (** the TAGE-SC-L under test, alone *)
  | Ideal
  | Mtage_sc
  | Rombf of int  (** 4 or 8 *)
  | Branchnet of Whisper_branchnet.Branchnet.budget
  | Whisper of Whisper_core.Config.t

val technique_name : technique -> string

val technique_key : technique -> string
(** Stable key covering the technique's full configuration (used by both
    the memo tables and the on-disk cache). *)

type ctx
(** Holds caches; create one per process/figure batch.  All operations
    on a [ctx] are safe to call from multiple pool workers. *)

type replay = [ `Arena | `Closure ]
(** How simulations feed the timing model: [`Arena] (the default)
    materializes each (app, input) event stream once into a packed
    {!Whisper_trace.Arena} shared by every technique and pool domain;
    [`Closure] regenerates the stream through [App_model.source] per
    simulation — kept as the differential oracle.  Results are
    byte-identical between the two modes. *)

val create_ctx :
  ?events:int ->
  ?baseline_kb:int ->
  ?jobs:int ->
  ?replay:replay ->
  ?cache_dir:string ->
  ?faults:float ->
  ?fault_seed:int ->
  ?retries:int ->
  ?task_timeout:float ->
  ?hang_s:float ->
  unit ->
  ctx
(** Defaults: 1.2 M branch events per simulation, 64 KB baseline, one
    worker domain, no persistent cache, [`Arena] replay.  [cache_dir]
    enables the on-disk result cache rooted at that directory (created
    if missing), plus the arena cache in its [arenas/] subdirectory so
    packed replay buffers survive CLI invocations too.

    Chaos/degraded mode: [faults > 0.0] turns on deterministic fault
    injection (a {!Whisper_util.Fault.t} seeded with [fault_seed],
    default 42) over batch work items {e and} the persistent cache's
    read path.  [retries] (default 2) grants each work item
    [1 + retries] attempts with exponential backoff; [task_timeout]
    bounds each attempt in seconds (also honoured without faults);
    [hang_s] is how long an injected hang sleeps.  Work items that
    exhaust their attempts are quarantined: {!run_batch} still succeeds,
    and {!run} reports them as degraded (NaN cycle accounts) instead of
    raising.  All fault decisions are pure functions of
    [(fault_seed, work key)], so a chaos run is byte-identical across
    reruns and job counts. *)

val events : ctx -> int
val set_events : ctx -> int -> unit
val baseline_kb : ctx -> int

val jobs : ctx -> int
(** Worker domains used by {!run_batch} (and the experiments' own
    parallel row computations). *)

val set_jobs : ctx -> int -> unit
val replay : ctx -> replay
val set_replay : ctx -> replay -> unit
val cache_dir : ctx -> string option

type stats = {
  sims : int;  (** timing-model simulations actually executed *)
  sim_seconds : float;  (** wall time summed over those simulations *)
  cache_hits : int;  (** results served from the persistent cache *)
  cache_misses : int;  (** persistent-cache lookups that missed *)
  arena_builds : int;  (** packed arenas generated in-process *)
  arena_seconds : float;  (** wall time summed over those builds *)
  arena_cache_hits : int;  (** arenas loaded from the persistent cache *)
  arena_cache_misses : int;  (** arena-cache lookups that missed *)
}

val stats : ctx -> stats
(** Cumulative counters since [create_ctx]; snapshot before/after an
    experiment to report its cost ({!Report.with_timing}). *)

val cfg_of : ctx -> Whisper_trace.Workloads.config -> Whisper_trace.Cfg.t

val lbr_predictor : int -> unit -> pc:int -> taken:bool -> bool
(** [lbr_predictor kb ()] is a fresh [kb]-budget TAGE-SC-L baseline as
    the correctness closure {!Whisper_trace.Profile.collect} consumes —
    the LBR-style "was the baseline right" bit production profiling
    exposes.  Each application returns an independent predictor
    instance (collection replays the stream twice against fresh
    state). *)

val arena :
  ctx -> Whisper_trace.Workloads.config -> input:int -> Whisper_trace.Arena.t
(** The memoized packed arena for (app, input) at the ctx's current
    event count, consulting (and populating) the persistent arena cache
    when one is enabled.  Immutable — share freely across domains. *)

val make_exec :
  ctx ->
  Whisper_trace.Workloads.config ->
  technique ->
  train_inputs:int list ->
  kb:int ->
  Whisper_trace.Branch.event ->
  bool
(** A fresh technique runtime (trained offline where needed) as a
    per-event exec closure for {!Whisper_pipeline.Machine.run}. *)

val make_exec_arena :
  ctx ->
  Whisper_trace.Workloads.config ->
  technique ->
  train_inputs:int list ->
  kb:int ->
  arena:Whisper_trace.Arena.t ->
  Whisper_pipeline.Machine.arena_exec
(** The same runtime as an arena execution strategy for
    {!Whisper_pipeline.Machine.run_arena_exec}: [Oracle] for the ideal
    predictor, staged {!Whisper_bpu.Predictor.Compiled} kernels for the
    online baselines (TAGE-SC-L / MTAGE-SC), and indexed closures
    reading unboxed fields straight from the packed buffers for the
    trained runtimes.  Byte-identical results to {!make_exec} under
    {!Whisper_pipeline.Machine.run} by the differential-oracle tests. *)

val profile :
  ?inputs:int list ->
  ?baseline_kb:int ->
  ctx ->
  Whisper_trace.Workloads.config ->
  Whisper_trace.Profile.t
(** Memoized profile collection ([inputs] defaults to [[0]]; several
    inputs are collected separately and merged, Fig. 18). *)

val run_key :
  ctx ->
  Whisper_trace.Workloads.config ->
  technique ->
  train_inputs:int list ->
  test_input:int ->
  kb:int ->
  string
(** The stable key {!run} memoizes and caches that configuration under —
    also the sweep orchestrator's manifest/journal item key, so a worker
    process's cache store and the supervisor's resume verification
    address the same file. *)

val run :
  ?train_inputs:int list ->
  ?test_input:int ->
  ?baseline_kb:int ->
  ctx ->
  Whisper_trace.Workloads.config ->
  technique ->
  Whisper_pipeline.Machine.result
(** Memoized end-to-end run: offline training from the train-input
    profile(s) where the technique needs it, then a timed simulation on
    the test input (default: train on input 0, test on input 1 — the
    paper's cross-input methodology).  Consults the persistent cache
    (when enabled) before simulating, and stores fresh results back. *)

val whisper_analysis :
  ?config:Whisper_core.Config.t ->
  ?train_inputs:int list ->
  ?jobs:int ->
  ?pool:Whisper_util.Pool.t ->
  ctx ->
  Whisper_trace.Workloads.config ->
  Whisper_core.Analyze.t
(** The offline analysis by itself (for Figs. 6, 7, 15, 16, 19).
    [jobs] (default 1) parallelizes the per-branch search over [pool]
    (default: the process-wide shared pool); plans are byte-identical
    for any value of either.  Keep the default [jobs] when already
    running inside a domain pool. *)

val whisper_plan :
  ?config:Whisper_core.Config.t ->
  ?train_inputs:int list ->
  ?jobs:int ->
  ?pool:Whisper_util.Pool.t ->
  ctx ->
  Whisper_trace.Workloads.config ->
  Whisper_core.Inject.t
(** Analysis + hint injection plan (for Fig. 19 overheads). *)

(** {2 Declarative work items}

    Each experiment declares the (app, technique) simulations and the
    profile collections it needs; {!run_batch} dedups them, collects the
    profiles first (each exactly once), then fans the independent
    simulations out across [jobs ctx] domains.  Results land in the memo
    tables and the persistent cache, so the experiment's subsequent row
    construction is pure, sequential lookups — deterministic ordering
    regardless of job count. *)

type work

val sim :
  ?train_inputs:int list ->
  ?test_input:int ->
  ?baseline_kb:int ->
  Whisper_trace.Workloads.config ->
  technique ->
  work
(** One end-to-end run, same defaults as {!run}. *)

val collect :
  ?inputs:int list -> ?baseline_kb:int -> Whisper_trace.Workloads.config ->
  work
(** One profile collection, same defaults as {!profile}. *)

val run_batch : ctx -> work list -> unit
(** Execute every distinct work item, in parallel when [jobs ctx > 1].
    A task's exception is captured by the pool (other tasks complete)
    and re-raised here afterwards — except in chaos/degraded mode
    (see {!create_ctx}), where failing items are retried per policy and
    quarantined instead of raising. *)

(** {2 Degraded-mode accounting} *)

val quarantined : ctx -> (string * Whisper_util.Whisper_error.t) list
(** Work items that exhausted their retry budget, with the final typed
    error each one died with, sorted by key. *)

val note_quarantined :
  ctx -> key:string -> Whisper_util.Whisper_error.t -> unit
(** Externally quarantine a run key (the sweep supervisor's poison-item
    path: a work item that killed its worker process twice fails in
    another process, so nothing ever raises here).  Subsequent {!run}
    calls for the key return a degraded result. *)

val fault_summary : ctx -> Report.faults
(** Cumulative chaos counters since [create_ctx] (monotone — snapshot
    before/after an experiment for per-experiment deltas, like
    {!stats}). *)
