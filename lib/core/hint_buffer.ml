open Whisper_util

type t = {
  store : Intlru.t;
  mutable n_insert : int;
  mutable n_hit : int;
  mutable n_miss : int;
}

let miss = Intlru.miss

let create ~size =
  { store = Intlru.create ~capacity:size; n_insert = 0; n_hit = 0; n_miss = 0 }

let size t = Intlru.capacity t.store
let length t = Intlru.length t.store

let insert t ~branch_pc payload =
  t.n_insert <- t.n_insert + 1;
  Intlru.insert t.store branch_pc payload

let probe t ~branch_pc =
  let p = Intlru.probe t.store branch_pc in
  if p >= 0 then t.n_hit <- t.n_hit + 1 else t.n_miss <- t.n_miss + 1;
  p

let insert_hint t ~branch_pc hint = insert t ~branch_pc (Brhint.encode hint)

let probe_hint t ~branch_pc =
  let p = probe t ~branch_pc in
  if p < 0 then None else Some (Brhint.decode p)

let clear t = Intlru.clear t.store
let insertions t = t.n_insert
let hits t = t.n_hit
let misses t = t.n_miss
