open Whisper_util

let format_version = 1
let tag = "WHNT"

let to_bytes (t : Inject.t) =
  let w = Binio.Writer.create () in
  Binio.Writer.magic w tag;
  Binio.Writer.varint w format_version;
  Binio.Writer.varint w t.Inject.dropped;
  Binio.Writer.varint w (List.length t.Inject.placements);
  List.iter
    (fun (p : Inject.placement) ->
      Binio.Writer.varint w p.branch_block;
      Binio.Writer.varint w p.host_block;
      Binio.Writer.varint w (Brhint.encode p.hint);
      Binio.Writer.varint w p.branch_pc;
      Binio.Writer.float64 w p.cond_prob)
    t.Inject.placements;
  Binio.Writer.contents w

let of_bytes data =
  let r = Binio.Reader.create data in
  Binio.Reader.magic r tag;
  let v = Binio.Reader.varint r in
  if v <> format_version then
    failwith (Printf.sprintf "Plan_io: unsupported version %d" v);
  let dropped = Binio.Reader.varint r in
  let n = Binio.Reader.varint r in
  let placements =
    List.init n (fun _ ->
        let branch_block = Binio.Reader.varint r in
        let host_block = Binio.Reader.varint r in
        let hint = Brhint.decode (Binio.Reader.varint r) in
        let branch_pc = Binio.Reader.varint r in
        let cond_prob = Binio.Reader.float64 r in
        { Inject.branch_block; host_block; hint; branch_pc; cond_prob })
  in
  let by_host = Hashtbl.create (max 16 n) in
  List.iter
    (fun (p : Inject.placement) ->
      let existing =
        Option.value ~default:[] (Hashtbl.find_opt by_host p.host_block)
      in
      Hashtbl.replace by_host p.host_block (p :: existing))
    placements;
  { Inject.placements; by_host; dropped }

let save t ~path = Binio.to_file path (to_bytes t)
let load ~path = of_bytes (Binio.of_file path)
