open Whisper_util

(* A session is a request-type-like unit of work: a fixed sequence of
   (function, repeat-count) entries, flattened at build time into the block
   visit order it produces.  Sessions make branch history locally
   repetitive — the property online predictors exploit in real servers —
   while the number of distinct sessions times their footprints sets the
   branch working-set size that pressures predictor capacity. *)

type t = {
  cfg : Cfg.t;
  rng : Rng.t;
  ctx : Behavior.ctx;
  behaviors : Behavior.t array;  (* input-adjusted copy *)
  session_blocks : int array array;  (* block visit order per session type *)
  cum_weights : float array;  (* cumulative Zipf weights over session types *)
  total_weight : float;
  mutable cur_session : int array;  (* block order being executed *)
  mutable pos : int;
  mutable count : int;
  (* one-event scratch buffers backing [next], so the single-event path is
     the n=1 case of [fill] rather than a second copy of the walk logic *)
  s_block : int array;
  s_pc : int array;
  s_instrs : int array;
  s_next_addr : int array;
  s_taken : Bytes.t;
}

(* Build the session catalogue: which functions each request type touches,
   with deterministic repeat counts.  Depends only on the config seed. *)
let build_sessions ~(cfg : Cfg.t) ~(config : Workloads.config) =
  let rng = Rng.create ((config.seed * 2_654_435) + 99) in
  let n_fn = Array.length cfg.funcs in
  (* function popularity for session composition *)
  let ranks = Rng.permutation rng n_fn in
  let weights =
    Array.init n_fn (fun i ->
        (1.0 /. (float_of_int (1 + ranks.(i)) ** config.func_zipf), i))
  in
  Array.init config.session_types (fun _ ->
      let lo, hi = config.session_len in
      let n = lo + Rng.int rng (hi - lo + 1) in
      let blocks = ref [] in
      for _ = 1 to n do
        let fid = Rng.sample_weighted rng weights in
        let rlo, rhi = config.repeats in
        let reps = rlo + Rng.int rng (rhi - rlo + 1) in
        let f = cfg.funcs.(fid) in
        for _ = 1 to reps do
          for b = f.first_block to f.first_block + f.n_blocks - 1 do
            blocks := b :: !blocks
          done
        done
      done;
      Array.of_list (List.rev !blocks))

(* Run-time popularity of session types, with an input-dependent
   permutation: different inputs make different request types hot.

   [phase] models macro workload drift (a product launch, a traffic
   migration): unlike [input], which only reshuffles the popularity
   tail, a phase change re-ranks {e every} session type — including the
   heads — so the hot branch working set genuinely moves and hints
   trained on an earlier phase lose coverage.  Phase 0 is the identity,
   so existing streams are unchanged. *)
let session_cum ~(config : Workloads.config) ~input ~phase =
  let n = config.session_types in
  let base_rng = Rng.create ((config.seed * 69_069) + 12345) in
  let ranks = Rng.permutation base_rng n in
  if phase > 0 then begin
    let prng = Rng.create ((config.seed * 48_271) + (phase * 104_003) + 7) in
    let perm = Rng.permutation prng n in
    let old = Array.copy ranks in
    for i = 0 to n - 1 do
      ranks.(i) <- old.(perm.(i))
    done
  end;
  if input > 0 then begin
    let irng = Rng.create ((config.seed * 31_337) + (input * 7919)) in
    let swaps = input * (max 1 (n / 6)) in
    for _ = 1 to swaps do
      let i = Rng.int irng n and j = Rng.int irng n in
      (* the hottest request types stay hot across inputs (an interpreter
         loop is hot no matter the script); only the tail reshuffles *)
      if ranks.(i) >= 2 && ranks.(j) >= 2 then begin
        let tmp = ranks.(i) in
        ranks.(i) <- ranks.(j);
        ranks.(j) <- tmp
      end
    done
  end;
  let cum = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (1.0 /. (float_of_int (1 + ranks.(i)) ** config.session_zipf));
    cum.(i) <- !acc
  done;
  (cum, !acc)

(* Input-dependent jitter on stochastic behaviour parameters: the static
   program is shared, but data-dependent probabilities shift between
   inputs (different queries, pages, seeds — paper §V-A). *)
let adjust_behaviors ~(cfg : Cfg.t) ~(config : Workloads.config) ~input =
  let jrng = Rng.create ((config.seed * 104_729) + (input * 31)) in
  Array.map
    (fun (b : Behavior.t) ->
      match b.kind with
      | Behavior.Bias p ->
          let p' = p +. (Rng.float jrng 0.04 -. 0.02) in
          { b with kind = Behavior.Bias (Float.min 0.998 (Float.max 0.002 p')) }
      | Behavior.Random p ->
          let p' = p +. (Rng.float jrng 0.16 -. 0.08) in
          { b with kind = Behavior.Random (Float.min 0.95 (Float.max 0.05 p')) }
      | _ -> b)
    cfg.behaviors

let sample_session t =
  let target = Rng.float t.rng t.total_weight in
  let lo = ref 0 and hi = ref (Array.length t.cum_weights - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cum_weights.(mid) > target then hi := mid else lo := mid + 1
  done;
  !lo

let create ?(lengths = Workloads.lengths) ?(chunk = 8) ?(phase = 0) ~cfg
    ~config ~input () =
  let rng = Rng.create ((config.Workloads.seed * 65_537) + (input * 257) + 1) in
  let ctx =
    Behavior.make_ctx ~lengths ~n_branches:(Cfg.n_branches cfg) ~chunk
  in
  let session_blocks = build_sessions ~cfg ~config in
  let cum_weights, total_weight = session_cum ~config ~input ~phase in
  let t =
    {
      cfg;
      rng;
      ctx;
      behaviors = adjust_behaviors ~cfg ~config ~input;
      session_blocks;
      cum_weights;
      total_weight;
      cur_session = [||];
      pos = 0;
      count = 0;
      s_block = Array.make 1 0;
      s_pc = Array.make 1 0;
      s_instrs = Array.make 1 0;
      s_next_addr = Array.make 1 0;
      s_taken = Bytes.make 1 '\000';
    }
  in
  t.cur_session <- t.session_blocks.(sample_session t);
  t.pos <- 0;
  t

(* Bulk fill: advance the walk by [n] events, writing each event's fields
   straight into caller-provided structure-of-arrays buffers (the taken
   bits land in a bitset).  Nothing is allocated per event — this is the
   decode-once path backing {!Arena.build}. *)
let fill t ~n ~block ~pc ~instrs ~next_addr ~taken =
  if
    n < 0
    || n > Array.length block
    || n > Array.length pc
    || n > Array.length instrs
    || n > Array.length next_addr
    || (n + 7) / 8 > Bytes.length taken
  then invalid_arg "App_model.fill: buffers shorter than n";
  for i = 0 to n - 1 do
    let cur = t.cur_session.(t.pos) in
    let blk = t.cfg.blocks.(cur) in
    let tk = Behavior.eval t.ctx ~rng:t.rng ~branch:cur t.behaviors.(cur) in
    Behavior.record t.ctx tk;
    (* A taken loop-back branch re-executes its own block; otherwise the
       walk advances through the session, switching sessions at the end. *)
    let succ_block =
      if tk && blk.loop_back then cur
      else begin
        if t.pos + 1 >= Array.length t.cur_session then begin
          t.cur_session <- t.session_blocks.(sample_session t);
          t.pos <- 0
        end
        else t.pos <- t.pos + 1;
        t.cur_session.(t.pos)
      end
    in
    Array.unsafe_set block i cur;
    Array.unsafe_set pc i blk.branch_pc;
    Array.unsafe_set instrs i blk.instrs;
    Array.unsafe_set next_addr i t.cfg.blocks.(succ_block).addr;
    let byte = Char.code (Bytes.unsafe_get taken (i lsr 3)) in
    let bit = 1 lsl (i land 7) in
    let byte' = if tk then byte lor bit else byte land lnot bit in
    Bytes.unsafe_set taken (i lsr 3) (Char.unsafe_chr (byte' land 0xff));
    t.count <- t.count + 1
  done

let next t =
  fill t ~n:1 ~block:t.s_block ~pc:t.s_pc ~instrs:t.s_instrs
    ~next_addr:t.s_next_addr ~taken:t.s_taken;
  {
    Branch.block = t.s_block.(0);
    pc = t.s_pc.(0);
    taken = Char.code (Bytes.get t.s_taken 0) land 1 = 1;
    instrs = t.s_instrs.(0);
    next_addr = t.s_next_addr.(0);
  }

let source t () = next t
let ctx t = t.ctx
let cfg t = t.cfg
let events_generated t = t.count
