(** Link-time hint injection (paper §IV, "Hint injection").

    For each hinted branch, pick the predecessor basic block that hosts
    its [brhint] using the conditional-probability correlation algorithm
    the paper borrows from I-SPY/Ripple/Twig: over a profiling trace,
    count for each candidate predecessor [P] how often an execution of
    [P] is followed by the branch within a lookahead window, and choose
    the earliest predecessor whose conditional probability clears a
    threshold (earlier injection = more hint timeliness, as long as the
    hint still correlates with the branch actually executing).  Falls
    back to the branch's own block (hint immediately before the branch)
    when no predecessor qualifies or the 12-bit PC offset cannot reach.

    The result doubles as the "updated binary": a map from host block to
    the hints it executes, plus static/dynamic overhead accounting
    (paper Fig. 19). *)

type placement = {
  branch_block : int;
  host_block : int;
  hint : Brhint.t;
  branch_pc : int;
      (** hint address + PC offset — what the hardware computes when the
          brhint executes, and the hint buffer's key *)
  cond_prob : float;  (** P(branch follows | host executed) *)
}

type t = {
  placements : placement list;
  by_host : (int, placement list) Hashtbl.t;
  dropped : int;  (** hints unplaceable within the PC-offset reach *)
}

val default_trace_events : int
(** Default correlation-trace length consumed by {!plan} (currently
    200k events) — exposed so arena-building callers can size a packed
    replay buffer that covers the plan's needs. *)

val plan :
  ?window:int ->
  ?threshold:float ->
  ?trace_events:int ->
  Config.t ->
  Whisper_trace.Cfg.t ->
  source:Whisper_trace.Branch.source ->
  hints:(int * History_select.choice) list ->
  t
(** [hints] pairs branch block ids with their analysis choices.  The
    [source] provides the correlation trace (a fresh profiling stream).
    Defaults: window 64 events, threshold 0.9, 200k trace events. *)

val hints_at : t -> block:int -> placement list
(** Hints whose brhint instructions live in [block], i.e. those executed
    when the block executes. *)

(** CSR-style packed view of a plan: one flat [int array] of encoded
    brhints plus a per-host-block offset index, so the per-event hint
    lookup in the compiled {!Runtime} is two array reads.  Entry order
    within a block matches {!hints_at} exactly — the compiled and
    interpretive runtimes must feed the hint buffer identically. *)
module Packed : sig
  type plan := t
  type t

  val of_plan : plan -> t

  val n_entries : t -> int
  (** Total placements (one entry per injected brhint). *)

  val max_host : t -> int
  (** Largest host block id, or [-1] for an empty plan.  Blocks beyond
      it host nothing — callers guard with one compare. *)

  val index : t -> int array
  (** Length [max_host + 2]; block [b]'s entries span
      [index.(b) .. index.(b+1) - 1]. *)

  val branch_pc : t -> int array
  (** Covered-branch PC per entry (the hint buffer key). *)

  val hint : t -> int array
  (** {!Brhint.encode}d payload per entry. *)
end

val static_overhead_pct : t -> Whisper_trace.Cfg.t -> float
(** Injected instructions as % of static instructions (Fig. 19). *)

val dynamic_overhead_pct :
  t -> Whisper_trace.Cfg.t -> source:Whisper_trace.Branch.source -> events:int -> float
(** Executed brhints as % of dynamic instructions over a fresh trace. *)
