type timing = {
  wall_s : float;
  sims : int;
  sim_seconds : float;
  cache_hits : int;
  cache_misses : int;
}

type faults = {
  injected : int;
  observed : int;
  retries : int;
  quarantined : int;
  cache_write_failures : int;
  cache_corrupt_dropped : int;
}

type t = {
  id : string;
  title : string;
  header : string list;
  rows : (string * float list) list;
  notes : string list;
  timing : timing option;
  faults : faults option;
}

let make ~id ~title ~header ?(notes = []) rows =
  { id; title; header; rows; notes; timing = None; faults = None }

let with_timing timing t = { t with timing = Some timing }
let with_faults faults t = { t with faults = Some faults }

let timing_line tm =
  Printf.sprintf
    "timing: wall=%.2fs sim-wall=%.2fs sims=%d cache-hits=%d cache-misses=%d"
    tm.wall_s tm.sim_seconds tm.sims tm.cache_hits tm.cache_misses

let faults_line f =
  Printf.sprintf
    "faults: injected=%d observed=%d retries=%d quarantined=%d \
     cache-write-fail=%d cache-corrupt-drop=%d"
    f.injected f.observed f.retries f.quarantined f.cache_write_failures
    f.cache_corrupt_dropped

let with_mean ?(label = "Avg") t =
  match t.rows with
  | [] -> t
  | (_, first) :: _ ->
      let n_cols = List.length first in
      let mean =
        List.init n_cols (fun c ->
            let vals =
              List.filter_map
                (fun (_, row) -> List.nth_opt row c)
                t.rows
            in
            Whisper_util.Stats.mean (Array.of_list vals))
      in
      { t with rows = t.rows @ [ (label, mean) ] }

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "== %s: %s ==\n" t.id t.title);
  let label_width =
    List.fold_left
      (fun acc (l, _) -> max acc (String.length l))
      (String.length (List.hd t.header))
      t.rows
  in
  let col_width =
    List.fold_left (fun acc h -> max acc (String.length h)) 9 (List.tl t.header)
    + 2
  in
  Buffer.add_string buf (Printf.sprintf "%-*s" (label_width + 2) (List.hd t.header));
  List.iter
    (fun h -> Buffer.add_string buf (Printf.sprintf "%*s" col_width h))
    (List.tl t.header);
  Buffer.add_char buf '\n';
  List.iter
    (fun (label, vals) ->
      Buffer.add_string buf (Printf.sprintf "%-*s" (label_width + 2) label);
      List.iter
        (fun v ->
          (* quarantined work items carry NaN sentinels, not numbers *)
          if Float.is_nan v then
            Buffer.add_string buf (Printf.sprintf "%*s" col_width "DEGRADED")
          else Buffer.add_string buf (Printf.sprintf "%*.2f" col_width v))
        vals;
      Buffer.add_char buf '\n')
    t.rows;
  List.iter (fun n -> Buffer.add_string buf ("  note: " ^ n ^ "\n")) t.notes;
  Option.iter
    (fun tm -> Buffer.add_string buf ("  " ^ timing_line tm ^ "\n"))
    t.timing;
  Option.iter
    (fun f -> Buffer.add_string buf ("  " ^ faults_line f ^ "\n"))
    t.faults;
  Buffer.contents buf

let print t = print_string (to_string t)

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," t.header);
  Buffer.add_char buf '\n';
  List.iter
    (fun (label, vals) ->
      Buffer.add_string buf label;
      List.iter (fun v -> Buffer.add_string buf (Printf.sprintf ",%.4f" v)) vals;
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.contents buf
